"""Synthetic network-level traffic for validation and load sweeps.

These patterns drive a bare network (no tiles/cores) the way BookSim's
standalone mode does; they back the load-latency ablation benches and
the property tests.
"""

from __future__ import annotations

import random
from enum import Enum
from typing import List, Optional

from repro.noc.network import Network
from repro.noc.packet import Packet, packet_pool
from repro.params import MessageClass


class TrafficPattern(Enum):
    UNIFORM_RANDOM = "uniform_random"
    TRANSPOSE = "transpose"
    HOTSPOT = "hotspot"
    NEIGHBOR = "neighbor"
    #: Request to a uniform destination; the destination replies with a
    #: 5-flit response (the server request-reply shape).
    REQUEST_REPLY = "request_reply"


class SyntheticTraffic:
    """Open-loop injector: Bernoulli per node per cycle."""

    def __init__(
        self,
        network: Network,
        pattern: TrafficPattern,
        injection_rate: float,
        seed: int = 0,
        hotspot_nodes: Optional[List[int]] = None,
        response_size: int = 5,
    ):
        if not (0.0 <= injection_rate <= 1.0):
            raise ValueError("injection rate must be a probability")
        if response_size < 1:
            raise ValueError(
                f"response_size must be at least 1 flit, got {response_size}"
            )
        self.network = network
        self.pattern = pattern
        self.rate = injection_rate
        self.rng = random.Random(seed)
        self.hotspot_nodes = hotspot_nodes or [0]
        self.response_size = response_size
        self.offered = 0
        #: Optional ``node -> bool`` predicate.  When set, packets whose
        #: source node fails it are *dropped after* every RNG draw has
        #: been made, so the random stream (and therefore every other
        #: node's injections) is bit-identical with or without the
        #: filter.  The sharded engine uses this to let each shard
        #: replay only its own rows of the global injection sequence.
        self.inject_filter = None
        if pattern is TrafficPattern.REQUEST_REPLY:
            network.on_delivery(self._maybe_reply)

    # -- injection ---------------------------------------------------------

    def inject(self) -> None:
        """Inject this cycle's packets (without stepping the network)."""
        # Endpoints only: pure-routing nodes (a chiplet star's IO die)
        # never source or sink traffic.  Equal to num_nodes everywhere
        # else, so mesh/ring random streams are unchanged.
        num_nodes = self.network.topology.num_endpoints
        rng_random = self.rng.random
        rate = self.rate
        for node in range(num_nodes):
            if rng_random() >= rate:
                continue
            dst = self._destination(node, num_nodes)
            if dst is None or dst == node:
                continue
            msg_class = (
                MessageClass.REQUEST
                if self.pattern is TrafficPattern.REQUEST_REPLY
                else self._random_class()
            )
            if self.inject_filter is not None \
                    and not self.inject_filter(node):
                continue
            pkt = packet_pool.acquire(node, dst, msg_class,
                                      created=self.network.cycle)
            self.network.send(pkt)
            self.offered += 1

    def step(self) -> None:
        """Inject this cycle's packets, then advance the network."""
        self.inject()
        self.network.step()

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    def _destination(self, node: int, num_nodes: int) -> Optional[int]:
        if self.pattern in (TrafficPattern.UNIFORM_RANDOM,
                            TrafficPattern.REQUEST_REPLY):
            return self.rng.randrange(num_nodes)
        if self.pattern is TrafficPattern.TRANSPOSE:
            topo = self.network.topology
            x, y = topo.coords(node)
            if x >= topo.height or y >= topo.width:
                return None
            return topo.node_at(y, x)
        if self.pattern is TrafficPattern.HOTSPOT:
            if self.rng.random() < 0.5:
                return self.rng.choice(self.hotspot_nodes)
            return self.rng.randrange(num_nodes)
        if self.pattern is TrafficPattern.NEIGHBOR:
            topo = self.network.topology
            limit = topo.num_endpoints
            neighbors = [n for _, n in topo.neighbors(node) if n < limit]
            return self.rng.choice(neighbors)
        raise ValueError(f"unhandled pattern {self.pattern}")

    def _random_class(self) -> MessageClass:
        # Server-like mix: mostly single-flit requests, some multi-flit
        # responses, a little coherence.
        r = self.rng.random()
        if r < 0.55:
            return MessageClass.REQUEST
        if r < 0.95:
            return MessageClass.RESPONSE
        return MessageClass.COHERENCE

    def _maybe_reply(self, packet: Packet, now: int) -> None:
        if packet.msg_class is not MessageClass.REQUEST:
            return
        reply = packet_pool.acquire(
            packet.dst,
            packet.src,
            MessageClass.RESPONSE,
            size=self.response_size,
            created=now,
        )
        self.network.send(reply)
        self.offered += 1

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        from repro.checkpoint.codec import rng_state

        return {
            "pattern": self.pattern.value,
            "rate": self.rate,
            "hotspot_nodes": list(self.hotspot_nodes),
            "response_size": self.response_size,
            "offered": self.offered,
            "rng": rng_state(self.rng),
        }

    @classmethod
    def from_state(cls, network: Network, state: dict) -> "SyntheticTraffic":
        from repro.checkpoint.codec import set_rng_state

        # The constructor re-registers the REQUEST_REPLY delivery hook.
        traffic = cls(
            network,
            TrafficPattern(state["pattern"]),
            state["rate"],
            hotspot_nodes=list(state["hotspot_nodes"]),
            response_size=state["response_size"],
        )
        traffic.offered = state["offered"]
        set_rng_state(traffic.rng, state["rng"])
        return traffic
