"""Shared test helpers: network construction and leak detection.

``assert_quiescent`` is the strongest invariant in the suite: after a
network drains, every buffer must be empty, every credit returned, every
ownership and proactive claim released.  Any leak in the PRA claim
machinery (reservations, latch claims, VC ownership, credit accounting)
turns into a crisp assertion failure here.
"""

from __future__ import annotations

from repro.noc.network import Network, build_network
from repro.params import NocKind, NocParams


def make_network(kind: NocKind, width: int = 4, height: int = 4,
                 **noc_kwargs) -> Network:
    return build_network(
        NocParams(kind=kind, mesh_width=width, mesh_height=height,
                  **noc_kwargs)
    )


def assert_quiescent(net: Network) -> None:
    """All traffic delivered and every resource back to its idle state."""
    assert net.stats.in_flight == 0, "packets still in flight"
    # Let trailing credit returns and control-network events land.
    net.run(12)
    if not net.routers:  # the ideal network has no router state
        return
    depth = net.params.router.flits_per_vc
    for router in net.routers:
        assert router.active_flits == 0, f"router {router.node} holds flits"
        for unit in router.input_units.values():
            for vc in unit.vcs:
                assert vc.is_empty, f"VC not drained at {router.node}"
                assert vc.allocated_to is None, (
                    f"VC ownership leaked at router {router.node}, "
                    f"port {unit.direction.name}, vc {vc.index}: "
                    f"{vc.allocated_to}"
                )
                assert vc.next_claim is None, "chained claim leaked"
        for port in router.output_ports.values():
            assert not port.is_held, f"port held at {router.node}"
            for vc_index, credits in enumerate(port.credits):
                assert credits == depth, (
                    f"credit leak at router {router.node} port "
                    f"{port.direction.name} vc {vc_index}: {credits}/{depth}"
                )
            assert all(r == 0 for r in port.reserved), "claim stat leaked"
        latches = getattr(router, "_latches", None)
        if latches is not None:
            for direction, latch in latches.items():
                assert not latch, f"latch not drained at {router.node}"
        # PRA bookkeeping: no live reservation-table entries and no
        # latch/input claims owned by a plan that is still pending
        # (cancelled or finished plans merely await the periodic purge).
        for port in router.output_ports.values():
            table = getattr(port, "reservations", None)
            if table is None:
                continue
            for slot, entry in list(table._slots.items()):
                assert not entry.live, (
                    f"live reservation leaked at router {router.node} "
                    f"port {port.direction.name} slot {slot}: {entry.plan}"
                )
        for attr in ("_latch_claims", "_input_claims"):
            claims = getattr(router, attr, None)
            if claims is None:
                continue
            for key, plan in list(claims.items()):
                assert plan.cancelled or plan.finished, (
                    f"{attr} entry at router {router.node} {key} owned "
                    f"by a pending plan: {plan}"
                )
    for ni in net.interfaces:
        assert not ni.port.is_held, f"NI port held at {ni.node}"
        for queue in ni.queues:
            assert not queue, f"NI queue not drained at {ni.node}"
        for vc_index, credits in enumerate(ni.port.credits):
            assert credits == depth, f"NI credit leak at {ni.node}"
        pins = getattr(ni, "_pins", None)
        if pins is not None:
            assert not pins, f"pin leaked at NI {ni.node}"
