#!/usr/bin/env python3
"""Load-latency sweep under synthetic request-reply traffic.

Drives each network organization open-loop (BookSim-style) with
uniform-random request-reply traffic at increasing injection rates and
prints the latency curves.  Useful for network-level validation outside
the full-system model.

Run:  python examples/synthetic_sweep.py
"""

from repro.noc.network import build_network
from repro.params import NocKind, NocParams
from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern

RATES = (0.002, 0.005, 0.01, 0.02, 0.04)
CYCLES = 2000


def main() -> None:
    kinds = (NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA, NocKind.IDEAL)
    print("Average network latency (cycles), uniform-random traffic, "
          "8x8 mesh:\n")
    header = "rate      " + "".join(f"{k.value:>10s}" for k in kinds)
    print(header)
    print("-" * len(header))
    for rate in RATES:
        cells = []
        for kind in kinds:
            net = build_network(NocParams(kind=kind))
            traffic = SyntheticTraffic(
                net, TrafficPattern.UNIFORM_RANDOM, rate, seed=9
            )
            traffic.run(CYCLES)
            cells.append(f"{net.stats.avg_network_latency:10.2f}")
        print(f"{rate:<10.3f}" + "".join(cells))
    print("\nThe ideal curve lower-bounds everything; Mesh+PRA tracks it "
          "more closely\nthan SMART, whose setup cycle cancels its "
          "multi-hop advantage at two tiles\nper cycle.")


if __name__ == "__main__":
    main()
