"""Full-system performance model: cores, co-simulation, sampling.

The Flexus/SimFlex substitute (DESIGN.md §5): trace-driven cores whose
every L1 miss is a real packet pair through the cycle-accurate NoC, with
per-workload ILP (base CPI) and MLP limits governing how much of the LLC
round-trip each core can hide.  Performance is measured exactly the way
the paper measures it — application instructions per cycle, aggregated
over all 64 cores — and normalized to the mesh baseline.
"""

from repro.perf.core_model import CoreModel
from repro.perf.system import PerfSample, SystemSimulator, simulate
from repro.perf.sampling import SampleStats, measure_with_confidence
from repro.perf.metrics import geomean, normalize_to
from repro.perf.instrumentation import LatencyReport, PraProbe

__all__ = [
    "CoreModel",
    "PerfSample",
    "SystemSimulator",
    "simulate",
    "SampleStats",
    "measure_with_confidence",
    "geomean",
    "normalize_to",
    "LatencyReport",
    "PraProbe",
]
