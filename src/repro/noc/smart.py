"""SMART: the single-cycle multi-hop network (Krishna et al., HPCA'13).

A SMART hop is a two-stage router pipeline followed by a single-cycle,
potentially multi-tile link traversal — three cycles per hop at zero
load (Table I).  The first stage performs routing, VC allocation, and
speculative crossbar allocation; the second broadcasts the SMART setup
request (SSR) on dedicated multi-drop wires to reserve a multi-hop path;
the third traverses crossbar(s) and link(s), covering up to ``HPC_max``
(= 2 at server-class tile sizes and 2 GHz) tiles.

Pipeline modeling: the two stages are *pipelined*, so they add latency
(a flit becomes visible at its next stop three cycles after its grant
instead of two) without costing link bandwidth — flits still stream one
per cycle through a held port.  The SSR outcome is resolved at grant
time against the intermediate router's state.

Bypass rules (SMART_1D with local priority):

* bypass only continues *straight* — a packet that turns or ejects at
  the next router stops there;
* a locally buffered flit competing for the intermediate router's output
  beats the SSR, which then falls back to a one-hop traversal;
* the bypass path is held for the whole packet, so flits of a packet are
  never reordered or interleaved (the hazard the paper attributes to
  per-flit reservation schemes).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.noc.flit import Flit
from repro.noc.mesh import MeshNetwork
from repro.noc.packet import Packet
from repro.noc.ports import OutputPort
from repro.noc.router import CREDIT_DELAY, MeshRouter
from repro.noc.topology import Direction
from repro.noc.vc import VirtualChannel

#: Grant-to-visibility latency: 2-stage pipeline + link (vs. 2 for mesh).
SMART_HOP_LATENCY = 3
#: Ejection takes the extra pipeline stage too.
SMART_EJECT_LATENCY = 2


class _BypassState:
    """Per-output-port record of an active 2-tile pass-through."""

    __slots__ = ("packet", "via_port", "landing_router", "landing_entry")

    def __init__(self, packet: Packet, via_port: OutputPort):
        self.packet = packet
        self.via_port = via_port
        self.landing_router = via_port.downstream_router
        self.landing_entry = via_port.downstream_unit.direction


class SmartRouter(MeshRouter):
    """Mesh router with SSR-based 2-tile bypass and a 3-cycle hop."""

    def __init__(self, node: int, network):
        super().__init__(node, network)
        self.hpc_max = network.params.smart.hops_per_cycle
        #: Active bypasses keyed by output direction.
        self._bypasses: Dict[Direction, _BypassState] = {}
        for port in self.output_ports.values():
            port.link_hop_latency = SMART_HOP_LATENCY

    # -- grant: resolve the SSR, then stream at line rate ----------------------

    def _grant(
        self,
        port: OutputPort,
        vc: VirtualChannel,
        packet: Packet,
        now: int,
        used_inputs: Set[Direction],
    ) -> None:
        via_port = self._try_bypass(packet, port.direction, now)
        if via_port is not None:
            landing_vc = via_port.downstream_vc(packet.vc_index)
            landing_vc.allocated_to = packet
            via_port.hold(packet, source_vc=None)
            self._bypasses[port.direction] = _BypassState(packet, via_port)
        elif not port.is_ejection:
            port.downstream_vc(packet.vc_index).allocated_to = packet
        port.hold(packet, source_vc=vc)
        used_inputs.add(vc.unit.direction)
        flit = self._send_smart(port, vc, now)
        if flit.is_tail:
            self._release(port)

    def _advance_held(
        self, port: OutputPort, now: int, used_inputs: Set[Direction]
    ) -> None:
        vc = port.active_vc
        if vc is None:
            return
        front = vc.front()
        if front is None or front.packet is not port.held_by:
            return
        if vc.unit.direction in used_inputs:
            return
        bypass = self._bypasses.get(port.direction)
        if bypass is not None:
            if bypass.via_port.usable_credits(front.packet.vc_index) < 1:
                return
        elif not port.has_credit_for(front.packet.vc_index):
            return
        used_inputs.add(vc.unit.direction)
        flit = self._send_smart(port, vc, now)
        if flit.is_tail:
            self._release(port)

    # -- transmission -----------------------------------------------------------

    def _send_smart(self, port: OutputPort, vc: VirtualChannel, now: int) -> Flit:
        bypass = self._bypasses.get(port.direction)
        if bypass is None:
            flit = vc.pop()
            self.active_flits -= 1
            feeder = vc.unit.feeder_port
            if feeder is not None:
                self.network.schedule_credit(now + CREDIT_DELAY, feeder, vc.index)
            if port.is_ejection:
                port.flits_sent += 1
                if port.held_by is flit.packet:
                    port.holder_sent += 1
                self.network.schedule_eject(
                    now + SMART_EJECT_LATENCY, port.ni_sink, flit
                )
                return flit
            port.send(flit, now)
            return flit
        # Two-tile traversal: both links this cycle, landing two hops away.
        flit = vc.pop()
        self.active_flits -= 1
        feeder = vc.unit.feeder_port
        if feeder is not None:
            self.network.schedule_credit(now + CREDIT_DELAY, feeder, vc.index)
        packet = flit.packet
        via_port = bypass.via_port
        port.flits_sent += 1
        port.holder_sent += 1
        via_port.flits_sent += 1
        via_port.holder_sent += 1
        via_port.credits[packet.vc_index] -= 1
        if flit.is_head:
            packet.hops_taken += 2
        self.network.schedule_arrival(
            now + SMART_HOP_LATENCY,
            bypass.landing_router,
            bypass.landing_entry,
            packet.vc_index,
            flit,
        )
        return flit

    def _release(self, port: OutputPort) -> None:
        bypass = self._bypasses.pop(port.direction, None)
        if bypass is not None:
            bypass.via_port.release()
        port.release()

    # -- SSR arbitration -------------------------------------------------------------

    def _try_bypass(self, packet: Packet, direction: Direction,
                    now: int) -> Optional[OutputPort]:
        """Return the intermediate router's output port if the SSR wins."""
        if direction is Direction.LOCAL or self.hpc_max < 2:
            return None
        inter_node = self.topology.neighbor(self.node, direction)
        if inter_node is None:
            return None
        inter: SmartRouter = self.network.routers[inter_node]
        if inter.route_of(packet) is not direction:
            return None  # the packet turns or ejects at the next router
        via_port = inter.output_ports.get(direction)
        if via_port is None or via_port.is_held:
            return None
        faults = self.network.faults
        if faults.enabled and via_port.fault_stalled(now):
            return None  # SSR refused across a stalled link
        if inter._has_local_candidate(direction):
            return None  # local flits have priority over SSRs
        landing_vc = via_port.downstream_vc(packet.vc_index)
        if landing_vc is None or not landing_vc.can_accept_packet(packet):
            return None
        if via_port.usable_credits(packet.vc_index) < 1:
            return None
        return via_port

    # -- checkpointing -----------------------------------------------------

    def state_dict(self, ctx) -> dict:
        state = super().state_dict(ctx)
        state["bypasses"] = [
            [int(direction), ctx.packet_ref(bypass.packet),
             bypass.via_port.router.node, int(bypass.via_port.direction)]
            for direction, bypass in self._bypasses.items()
        ]
        return state

    def load_state(self, state: dict, ctx) -> None:
        super().load_state(state, ctx)
        self._bypasses = {}
        for direction_value, packet_ref, via_node, via_dir in state["bypasses"]:
            via_port = self.network.routers[via_node].output_ports[
                Direction(via_dir)
            ]
            self._bypasses[Direction(direction_value)] = _BypassState(
                ctx.packet(packet_ref), via_port
            )

    def _has_local_candidate(self, direction: Direction) -> bool:
        for unit in self._unit_list:
            for vc in unit.vcs:
                front = vc.front()
                if front is not None and front.is_head and (
                    self.route_of(front.packet) is direction
                ):
                    return True
        return False


class SmartNetwork(MeshNetwork):
    """The SMART organization: mesh wiring with SMART routers."""

    router_class = SmartRouter
