"""Network interfaces: per-tile injection and ejection.

The NI sits between a tile (core + LLC slice) and its router.  Injection
is packet-granular over the single local port, arbitrated round-robin
across the three message-class queues.  Ejection reassembles flits and
fires the network's delivery callback on tail arrival.

The Mesh+PRA interface (:class:`repro.core.pra_network.PraInterface`)
extends this with the LLC-hit control-packet trigger and deterministic
injection pinning.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, TYPE_CHECKING

from repro.noc.flit import Flit
from repro.noc.packet import Packet
from repro.noc.ports import OutputPort
from repro.noc.topology import Direction
from repro.params import MessageClass, NUM_MESSAGE_CLASSES
from repro.trace.events import EV_EJECT, EV_PACKET_INJECT

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.network import Network
    from repro.noc.router import BaseRouter


class NetworkInterface:
    """Injection/ejection endpoint of one tile."""

    def __init__(self, node: int, network: "Network", router: "BaseRouter"):
        self.node = node
        self.network = network
        self.router = router
        self.queues: List[Deque[Packet]] = [
            deque() for _ in range(NUM_MESSAGE_CLASSES)
        ]
        params = network.params.router
        self.port = OutputPort(
            router=None,
            direction=Direction.LOCAL,
            network=network,
            num_vcs=params.vcs_per_port,
            vc_depth=params.flits_per_vc,
            node=node,
        )
        self.port.connect(router, Direction.LOCAL)
        self._rr = 0
        self._holder_next_flit = 0

    # -- injection ---------------------------------------------------------

    def enqueue(self, packet: Packet, now: int) -> None:
        """Accept a packet from the tile for injection."""
        self.queues[packet.vc_index].append(packet)
        self.network.stats.record_injection(packet)
        self.network.wake_ni(self.node)

    def has_work(self) -> bool:
        """Whether this NI must be stepped again next cycle.

        A held port implies the holder packet is still at its queue
        head (popped only on tail send), so checking the queues covers
        mid-packet injection as well.
        """
        return any(self.queues)

    def queued_packets(self, msg_class: MessageClass) -> int:
        return len(self.queues[msg_class.value])

    def step(self, now: int) -> None:
        port = self.port
        faults = self.network.faults
        if faults.enabled and port.fault_stalled(now):
            return  # injection link inside a stall window
        if port.held_by is not None:
            self._continue_holder(now)
            return
        self._arbitrate(now)

    def _continue_holder(self, now: int) -> None:
        port = self.port
        packet = port.held_by
        assert packet is not None
        # Check the credit pool of the VC the holder was actually
        # granted (``held_dst_vc``), not ``packet.vc_index``: layered
        # interfaces (ring datelines, chiplet escapes) remap the
        # downstream VC at injection, and checking the wrong pool could
        # transmit without credit mid-packet.  Identical for the base
        # mesh, where the two always coincide.
        dst_vc = port.held_dst_vc
        if port.ni_sink is None and port.credits[dst_vc] < 1:
            return
        flit = packet.flits[self._holder_next_flit]
        self._holder_next_flit += 1
        network = self.network
        if (network.tracer.enabled or not port._plain_send
                or port.ni_sink is not None):
            port.send(flit, now)
        else:
            # ``OutputPort.send`` flattened for the common case: a held
            # injection port (holder bookkeeping and the credit charge
            # are unconditional, and ``port.router`` is None so no hop
            # is counted).  One NI flit per stepped cycle goes through
            # here, so the virtual call was measurable.
            port.flits_sent += 1
            port.holder_sent += 1
            if port.credits[dst_vc] <= 0:
                raise RuntimeError("credit underflow: flow control violated")
            port.credits[dst_vc] -= 1
            network.schedule_arrival(
                now + port.link_hop_latency,
                port.downstream_router,
                port.downstream_dir,
                dst_vc,
                flit,
            )
        if flit.is_tail:
            self.queues[packet.vc_index].popleft()
            port.release()

    def _arbitrate(self, now: int) -> None:
        port = self.port
        for offset in range(NUM_MESSAGE_CLASSES):
            idx = (self._rr + offset) % NUM_MESSAGE_CLASSES
            queue = self.queues[idx]
            if not queue:
                continue
            packet = queue[0]
            if not self._may_inject(packet, now):
                continue
            if not port.can_allocate_vc(packet, self._injection_vc(packet)):
                continue
            self._rr = (idx + 1) % NUM_MESSAGE_CLASSES
            self._start_injection(packet, now)
            return

    def _injection_vc(self, packet: Packet) -> int:
        """Hook: downstream VC index an injection targets (layered
        interfaces remap message classes onto escape-layer VCs)."""
        return packet.vc_index

    def _prepare_injection(self, packet: Packet) -> None:
        """Hook: per-packet setup right before injection starts."""

    def _start_injection(self, packet: Packet, now: int) -> None:
        port = self.port
        self._prepare_injection(packet)
        dst_vc = self._injection_vc(packet)
        port.downstream_vc(dst_vc).allocated_to = packet
        port.hold(packet, source_vc=None, dst_vc=dst_vc)
        packet.injected = now
        self._trace_injection(packet, now)
        self._holder_next_flit = 0
        self._continue_holder(now)

    def _trace_injection(self, packet: Packet, now: int) -> None:
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.emit(
                now, EV_PACKET_INJECT, pid=packet.pid, node=self.node,
                dst=packet.dst, msg_class=packet.msg_class.name,
                size=packet.size, planned=packet.pra_plan is not None,
            )

    def _may_inject(self, packet: Packet, now: int) -> bool:
        """Hook: the PRA interface defers packets pinned for later slots."""
        return True

    # -- checkpointing -----------------------------------------------------

    def state_dict(self, ctx) -> dict:
        return {
            "queues": [
                [ctx.packet_ref(packet) for packet in queue]
                for queue in self.queues
            ],
            "rr": self._rr,
            "holder_next_flit": self._holder_next_flit,
            "port": self.port.state_dict(ctx),
        }

    def load_state(self, state: dict, ctx) -> None:
        self.queues = [
            deque(ctx.packet(ref) for ref in refs)
            for refs in state["queues"]
        ]
        self._rr = state["rr"]
        self._holder_next_flit = state["holder_next_flit"]
        self.port.load_state(state["port"], ctx)

    # -- ejection ------------------------------------------------------------

    def eject_flit(self, flit: Flit, now: int) -> None:
        if flit.is_head:
            self.network._head_arrived(flit.packet, now)
        if flit.is_tail:
            packet = flit.packet
            tracer = self.network.tracer
            if tracer.enabled:
                tracer.emit(
                    now, EV_EJECT, pid=packet.pid, node=self.node,
                    src=packet.src, hops=packet.hops_taken,
                )
            self.network._deliver(packet, now)

    def __repr__(self) -> str:
        return f"NetworkInterface(node={self.node})"


class LayeredInterface(NetworkInterface):
    """NI for layered-VC networks (ring datelines, chiplet escapes).

    Each message class owns ``vc_layers`` consecutive VCs; packets
    always inject on layer 0 and the routers advance them to layer 1 at
    the escape boundary (the ring dateline, or the first interposer
    hop), which is what breaks the cyclic channel dependency.
    """

    vc_layers = 2

    def _prepare_injection(self, packet: Packet) -> None:
        packet.ring_layer = 0

    def _injection_vc(self, packet: Packet) -> int:
        return packet.msg_class.value * self.vc_layers
