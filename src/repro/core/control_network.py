"""The bufferless control network that performs proactive allocation.

Structure (paper Figure 5): a mesh of single-cycle 2-hop multi-drop
segments per direction.  A control packet is one flit: {destination, lag,
packet size, message class, look-ahead route}.  Each hop costs one cycle
of processing and one of transmission, so the control packet advances
two hops per two cycles while the corresponding data packet will cover
two hops per cycle on the pre-allocated path — hence the *lag* (cycles
between control and data packet) shrinks by one per segment and the
packet is dropped when it reaches zero.  Turns are not allowed inside a
multi-drop segment, so a segment that would cross the XY turn point
covers a single hop.  A control packet that cannot reserve what it needs
is simply dropped; partial pre-allocation keeps whatever was reserved.

Mapping into the simulator: a :class:`ControlRun` walks the data
packet's XY route, attempting one :class:`~repro.core.plan.PlanStep`
every two cycles.  Reservation attempts are all-or-nothing per step:
driver-port timeslots, bypassed-router timeslots, crossbar input slots,
latch availability (for the ACK conversion of the previous landing), and
full-packet buffer space at the new landing.  Contention for the
multi-drop media and injection latches is modeled with per-(node,
direction, cycle) claims; the loser is dropped, mirroring the statically
prioritized input latches of the hardware.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from repro.core.plan import (
    LAND_LATCH,
    LAND_NI,
    LAND_VC,
    PlanStep,
    PraPlan,
    SRC_LATCH,
)
from repro.core.reservation import ReservationEntry
from repro.noc.packet import Packet
from repro.noc.routing import xy_route
from repro.noc.topology import Direction
from repro.trace.events import (
    EV_CONTROL_DROP,
    EV_CONTROL_INJECT,
    EV_CONTROL_SEGMENT,
    EV_FAULT,
    EV_RESERVATION_COMMIT,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pra_network import PraNetwork
    from repro.core.pra_router import PraRouter

#: Drop reasons (Figure 7 groups drops by remaining lag; reasons feed
#: the more detailed diagnostics).
DROP_LAG_ZERO = "lag_zero"
DROP_RESOURCE_BUSY = "resource_busy"
DROP_CONTROL_CONFLICT = "control_conflict"
DROP_REACHED_DESTINATION = "reached_destination"
#: Chaos-harness drops (see :mod:`repro.faults`).
DROP_FAULT = "fault_drop"
DROP_FAULT_ACK = "fault_ack_loss"
DROP_FAULT_BLACKOUT = "fault_blackout"

#: Cycles per multi-drop segment: one processing + one transmission.
SEGMENT_CYCLES = 2


class ControlRun:
    """One control packet's life, from injection to drop."""

    __slots__ = (
        "packet",
        "plan",
        "route",
        "pos",
        "next_slot",
        "lag",
        "trigger",
        "source_kind",
        "source_dir",
        "source_vc",
        "entry_dir",
    )

    def __init__(
        self,
        packet: Packet,
        route: List[Tuple[int, Direction]],
        start_slot: int,
        lag: int,
        trigger: str,
        source_kind: str,
        source_dir: Direction,
        source_vc: int,
    ):
        self.packet = packet
        self.plan = PraPlan(packet, start_slot)
        self.route = route
        self.pos = 0
        self.next_slot = start_slot
        self.lag = lag
        self.trigger = trigger
        self.source_kind = source_kind
        self.source_dir = source_dir
        self.source_vc = source_vc
        #: Direction the data packet enters the current driver from.
        self.entry_dir: Optional[Direction] = None

    # -- checkpointing ---------------------------------------------------

    def state_dict(self, ctx) -> dict:
        return {
            "packet": ctx.packet_ref(self.packet),
            "plan": ctx.plan_ref(self.plan),
            "route": [[node, int(direction)] for node, direction in self.route],
            "pos": self.pos,
            "next_slot": self.next_slot,
            "lag": self.lag,
            "trigger": self.trigger,
            "source_kind": self.source_kind,
            "source_dir": int(self.source_dir),
            "source_vc": self.source_vc,
            "entry_dir": (int(self.entry_dir)
                          if self.entry_dir is not None else None),
        }

    @classmethod
    def from_state(cls, state: dict, ctx) -> "ControlRun":
        # ``__init__`` would build a fresh PraPlan; the restored run must
        # share the registry's plan object with its packet and the
        # reservation tables instead.
        run = cls.__new__(cls)
        run.packet = ctx.packet(state["packet"])
        run.plan = ctx.plan(state["plan"])
        run.route = [
            (node, Direction(direction))
            for node, direction in state["route"]
        ]
        run.pos = state["pos"]
        run.next_slot = state["next_slot"]
        run.lag = state["lag"]
        run.trigger = state["trigger"]
        run.source_kind = state["source_kind"]
        run.source_dir = Direction(state["source_dir"])
        run.source_vc = state["source_vc"]
        run.entry_dir = (
            Direction(state["entry_dir"])
            if state["entry_dir"] is not None else None
        )
        return run


class ControlNetwork:
    """Reservation engine shared by all Mesh+PRA routers."""

    def __init__(self, network: "PraNetwork"):
        self.network = network
        self.params = network.params.pra
        self.stats = network.stats
        #: Multi-drop media and injection-latch claims, bucketed per
        #: cycle: cycle -> {(node, direction-or-"inject"), ...}.  Buckets
        #: are popped as cycles pass, so claims for past cycles are
        #: unreachable and the structure stays bounded by the claim
        #: horizon regardless of run length.
        self._media: Dict[int, Set[Tuple[int, object]]] = {}
        #: First cycle whose bucket has not been purged yet.
        self._purge_floor = 0

    # -- injection ----------------------------------------------------------

    def inject(
        self,
        packet: Packet,
        source_node: int,
        start_slot: int,
        trigger: str,
        source_kind: str,
        source_dir: Direction,
        source_vc: int,
    ) -> Optional[ControlRun]:
        """Place a control packet in the local latch, if free.

        ``start_slot`` is the cycle the data packet's head flit will
        traverse the source router's output port.  Returns the run, or
        None when the injection was dropped (latch busy or lag window
        unusable).
        """
        now = self.network.cycle
        process_at = now + 1
        lag = start_slot - process_at
        if lag < 1:
            return None  # nothing left to pre-allocate
        lag = min(lag, self.params.max_lag)
        tracer = self.network.tracer
        faults = self.network.faults
        if faults.enabled:
            if faults.blackout_at(source_node, process_at):
                faults.record("control_blackout")
                if tracer.enabled:
                    tracer.emit(now, EV_FAULT, pid=packet.pid,
                                node=source_node, site="control_inject",
                                fault="blackout")
                return None
            if faults.drop_control_inject(source_node, packet.pid, now):
                faults.record("control_drop")
                if tracer.enabled:
                    tracer.emit(now, EV_FAULT, pid=packet.pid,
                                node=source_node, site="control_inject",
                                fault="drop")
                return None
        if not self._claim(source_node, "inject", process_at):
            # The local latch is busy: the packet never enters the
            # control network (it is not counted as injected).
            self.stats.control_injection_conflicts += 1
            if tracer.enabled:
                tracer.emit(now, EV_CONTROL_INJECT, pid=packet.pid,
                            node=source_node, accepted=False,
                            trigger=trigger)
            return None
        route = xy_route(self.network.topology, source_node, packet.dst)
        run = ControlRun(
            packet,
            route,
            start_slot,
            lag,
            trigger,
            source_kind,
            source_dir,
            source_vc,
        )
        packet.pra_pending = True
        self.stats.control_packets_injected += 1
        if tracer.enabled:
            tracer.emit(now, EV_CONTROL_INJECT, pid=packet.pid,
                        node=source_node, accepted=True, trigger=trigger,
                        lag=lag, start_slot=start_slot, dst=packet.dst)
        self.network.schedule_call(process_at, self._process, run)
        return run

    # -- per-segment processing -------------------------------------------

    def _process(self, run: ControlRun) -> None:
        now = self.network.cycle
        if run.plan.cancelled:
            # The data packet missed its window and the plan was torn
            # down while this control packet was still in flight; any
            # further reservation would leak claims.  Drop.
            self._record_drop(max(run.lag, 0), DROP_RESOURCE_BUSY, run)
            return
        node, direction = run.route[run.pos]
        faults = self.network.faults
        if faults.enabled and not self._survives_faults(run, node, now,
                                                        faults):
            return
        if direction is Direction.LOCAL:
            self._reserve_ejection(run, node, now)
            return
        hops = self._step_hops(run, direction)
        if not self._reserve_step(run, node, direction, hops, now):
            self._finish(run, DROP_RESOURCE_BUSY)
            return
        run.pos += hops
        run.entry_dir = direction.opposite
        run.next_slot += 1
        run.lag -= 1
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.emit(now, EV_CONTROL_SEGMENT, pid=run.packet.pid,
                        node=node, direction=direction.name, hops=hops,
                        slot=run.next_slot - 1, lag=run.lag)
        if run.lag <= 0:
            self._finish(run, DROP_LAG_ZERO)
            return
        # Transmit over the next multi-drop segment: the receivers' input
        # latches are claimed; on conflict the packet is dropped there.
        # Both latch claims of a 2-hop segment must succeed together —
        # committing one before checking the other would leak a claim
        # that later drops an unrelated control packet with a spurious
        # conflict at that (node, direction, cycle).
        next_time = now + SEGMENT_CYCLES
        keys = [(run.route[run.pos][0], direction, next_time)]
        if hops == 2:
            keys.append((run.route[run.pos - 1][0], direction, next_time))
        if not self._claim_all(keys):
            self._finish(run, DROP_CONTROL_CONFLICT)
            return
        self.network.schedule_call(next_time, self._process, run)

    def _survives_faults(self, run: ControlRun, node: int, now: int,
                         faults) -> bool:
        """Apply control-plane faults at a segment boundary.

        Returns False (after settling the run) when the control packet
        was eaten here.  ACK loss is applied *before* any reservation
        attempt, so the already committed prefix — which ends in a
        standard-VC landing with full buffer space claimed — stays
        self-consistent: the data packet simply stops there and falls
        back to hop-by-hop allocation.
        """
        tracer = self.network.tracer
        pid = run.packet.pid
        if faults.blackout_at(node, now):
            faults.record("control_blackout")
            if tracer.enabled:
                tracer.emit(now, EV_FAULT, pid=pid, node=node,
                            site="control_segment", fault="blackout")
            self._finish(run, DROP_FAULT_BLACKOUT)
            return False
        if faults.drop_control_segment(node, pid, now):
            faults.record("control_drop")
            if tracer.enabled:
                tracer.emit(now, EV_FAULT, pid=pid, node=node,
                            site="control_segment", fault="drop")
            self._finish(run, DROP_FAULT)
            return False
        if run.pos > 0 and faults.suppress_ack(node, pid, now):
            faults.record("ack_loss")
            if tracer.enabled:
                tracer.emit(now, EV_FAULT, pid=pid, node=node,
                            site="ack", fault="suppressed")
            self._finish(run, DROP_FAULT_ACK)
            return False
        return True

    def _step_hops(self, run: ControlRun, direction: Direction) -> int:
        """2 hops when the route continues straight past the next router
        (turns are not allowed within a multi-drop segment)."""
        nxt = run.pos + 1
        if nxt < len(run.route) and run.route[nxt][1] is direction:
            return 2
        return 1

    # -- reservation attempts (all-or-nothing per step) -----------------------

    def _reserve_step(
        self,
        run: ControlRun,
        node: int,
        direction: Direction,
        hops: int,
        now: int,
    ) -> bool:
        routers = self.network.routers
        driver: "PraRouter" = routers[node]
        size = run.packet.size
        slot = run.next_slot
        driver_port = driver.output_ports[direction]
        src_kind, src_dir, src_vc = self._step_source(run)

        # 1. Driver output-port timeslots.  A port currently held by a
        # normally allocated packet is still reservable: the PRA arbiter
        # preempts the hold at the reserved slots (the held transmission
        # skips those cycles), and buffer interleaving is impossible
        # because landings claim their VC at reservation time.
        table = driver_port.reservations
        if not table.within_horizon(now, slot, size):
            return False
        if not table.window_free(slot, size):
            return False
        # Injected link stalls are visible at reservation time (the
        # static schedule), so slots that would drive a dead link are
        # refused here and the packet degrades to hop-by-hop allocation.
        faults = self.network.faults
        if faults.enabled and faults.link_window_blocked(
            node, direction, slot, size
        ):
            return False
        # 2. Driver crossbar input.
        if not driver.input_window_free(src_dir, slot, size):
            return False
        # 3. Bypassed router (2-hop steps).
        via_router = None
        via_port = None
        if hops == 2:
            via_node = run.route[run.pos + 1][0]
            via_router = routers[via_node]
            via_port = via_router.output_ports[direction]
            if not via_port.reservations.within_horizon(now, slot, size):
                return False
            if not via_port.reservations.window_free(slot, size):
                return False
            if not via_router.input_window_free(direction.opposite, slot, size):
                return False
            if faults.enabled and faults.link_window_blocked(
                via_node, direction, slot, size
            ):
                return False
        # 4. Landing buffer: full-packet space in the standard VC.
        landing_port = via_port if hops == 2 else driver_port
        landing_node = run.route[run.pos + hops][0]
        vc_index = run.packet.vc_index
        landing_vc = landing_port.downstream_vc(vc_index)
        if not landing_vc.can_accept_packet(run.packet):
            return False
        if landing_port.credits[vc_index] < size:
            return False
        # 5. ACK conversion: the previous landing (this driver) becomes a
        # latch instead of a buffered stop — the latch must be free.
        # Flit i lands in the latch at the end of slot - 1 + i.
        if run.pos > 0 and not driver.latch_window_free(src_dir, slot - 1, size):
            return False
        # 6. LLC-triggered runs stream the response out of the source
        # NI: its local VC and injection credits must be claimable.
        if run.pos == 0 and run.trigger == "llc":
            if not self._step0_source_claimable(run, node):
                return False

        # --- commit ---
        if run.pos > 0:
            self._convert_previous_landing(run, driver, src_dir, slot, size)
        else:
            self._claim_step0_source(run, driver, now)
        step = PlanStep(
            driver_node=node,
            out_dir=direction,
            slot=slot,
            hops=hops,
            source_kind=src_kind,
            source_dir=src_dir,
            source_vc=src_vc,
            via_node=(run.route[run.pos + 1][0] if hops == 2 else None),
            landing_node=landing_node,
            landing_kind=LAND_VC,
            landing_entry=direction.opposite,
        )
        self._append_step(run, step)
        for i in range(size):
            table.reserve(
                slot + i, ReservationEntry(run.plan, step, i, is_driver=True)
            )
            driver.claim_input(src_dir, slot + i, run.plan)
            if via_port is not None:
                via_port.reservations.reserve(
                    slot + i,
                    ReservationEntry(run.plan, step, i, is_driver=False),
                )
                via_router.claim_input(direction.opposite, slot + i, run.plan)
        run.plan.claim_landing_vc(landing_port, vc_index)
        # The reserved routers must be stepping when their slots arrive
        # even if no flit is buffered there; has_work() keeps them awake
        # until the tables drain.
        self.network.wake_router(node)
        if via_router is not None:
            self.network.wake_router(via_router.node)
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.emit(
                now, EV_RESERVATION_COMMIT, pid=run.packet.pid, node=node,
                direction=direction.name, slot=slot, size=size, hops=hops,
                via=step.via_node, landing=landing_node,
                landing_kind=step.landing_kind,
            )
        return True

    def _reserve_ejection(self, run: ControlRun, node: int, now: int) -> None:
        """Final step: pre-allocate the destination router's local port."""
        driver: "PraRouter" = self.network.routers[node]
        port = driver.output_ports[Direction.LOCAL]
        size = run.packet.size
        slot = run.next_slot
        src_kind, src_dir, src_vc = self._step_source(run)
        faults = self.network.faults
        ok = (
            not (faults.enabled and faults.link_window_blocked(
                node, Direction.LOCAL, slot, size))
        ) and (
            port.reservations.within_horizon(now, slot, size)
            and port.reservations.window_free(slot, size)
            and driver.input_window_free(src_dir, slot, size)
            and (
                run.pos == 0
                or driver.latch_window_free(src_dir, slot - 1, size)
            )
            and (
                run.pos > 0
                or run.trigger != "llc"
                or self._step0_source_claimable(run, node)
            )
        )
        if not ok:
            self._finish(run, DROP_RESOURCE_BUSY)
            return
        if run.pos > 0:
            self._convert_previous_landing(run, driver, src_dir, slot, size)
        else:
            self._claim_step0_source(run, driver, now)
        step = PlanStep(
            driver_node=node,
            out_dir=Direction.LOCAL,
            slot=slot,
            hops=1,
            source_kind=src_kind,
            source_dir=src_dir,
            source_vc=src_vc,
            landing_node=node,
            landing_kind=LAND_NI,
        )
        self._append_step(run, step)
        for i in range(size):
            port.reservations.reserve(
                slot + i, ReservationEntry(run.plan, step, i, is_driver=True)
            )
            driver.claim_input(src_dir, slot + i, run.plan)
        self.network.wake_router(node)
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.emit(
                now, EV_RESERVATION_COMMIT, pid=run.packet.pid, node=node,
                direction=Direction.LOCAL.name, slot=slot, size=size,
                hops=1, via=None, landing=node, landing_kind=LAND_NI,
            )
        run.lag -= 1
        self._finish(run, DROP_REACHED_DESTINATION)

    # -- helpers ----------------------------------------------------------

    def _step_source(self, run: ControlRun) -> Tuple[str, Direction, int]:
        if run.pos == 0:
            return run.source_kind, run.source_dir, run.source_vc
        return SRC_LATCH, run.entry_dir, 0

    def _convert_previous_landing(
        self, run, driver: "PraRouter", entry_dir: Direction, slot: int,
        size: int,
    ) -> None:
        """Apply the ACK: the flit will pass through this router's latch
        instead of stopping in the claimed standard VC."""
        prev = run.plan.steps[-1]
        run.plan.release_landing_vc()
        prev.landing_kind = LAND_LATCH
        for i in range(size):
            driver.claim_latch(entry_dir, slot - 1 + i, run.plan)

    def _step0_source_claimable(self, run: ControlRun, node: int) -> bool:
        """The announced response will stream through the source NI's
        local VC.  The VC is claimable when it is free, or when its
        current owner is itself a pinned, planned injection whose drain
        schedule is deterministic (pin windows never overlap, and planned
        packets leave the VC at their reserved slots) — then ownership is
        chained to hand over the instant the owner's tail departs.  The
        NI is the only writer into this VC and injections charge credits
        normally, so no buffer-space claim is needed."""
        ni = self.network.interfaces[node]
        vc = ni.port.downstream_vc(run.packet.vc_index)
        if vc.can_accept_packet(run.packet):
            return True
        owner = vc.allocated_to
        if owner is None or vc.next_claim is not None:
            return False
        owner_plan = owner.pra_plan
        return (
            owner_plan is not None
            and owner_plan.injection_claim
            and not owner_plan.cancelled
        )

    def _claim_step0_source(self, run, driver: "PraRouter", now: int) -> None:
        """Take (or chain) ownership of the source NI's local VC and pin
        the injection slot."""
        if run.trigger != "llc":
            return
        ni = self.network.interfaces[driver.node]
        vc = ni.port.downstream_vc(run.packet.vc_index)
        if vc.allocated_to is None and vc.is_empty:
            vc.allocated_to = run.packet
        else:
            assert vc.next_claim is None
            vc.next_claim = run.packet
        run.plan.injection_claim = True
        run.plan.source_interface = ni
        ni.pin(run.packet, run.plan)

    def _claim(self, node: int, key, cycle: int) -> bool:
        bucket = self._media.get(cycle)
        media_key = (node, key)
        if bucket is None:
            self._media[cycle] = {media_key}
            return True
        if media_key in bucket:
            return False
        bucket.add(media_key)
        return True

    def _claim_all(self, keys: Sequence[Tuple[int, object, int]]) -> bool:
        """Claim every (node, key, cycle) or none (check, then commit)."""
        for node, key, cycle in keys:
            bucket = self._media.get(cycle)
            if bucket is not None and (node, key) in bucket:
                return False
        for node, key, cycle in keys:
            self._media.setdefault(cycle, set()).add((node, key))
        return True

    def claimed(self, node: int, key, cycle: int) -> bool:
        """Is this (node, key, cycle) media slot currently claimed?"""
        bucket = self._media.get(cycle)
        return bucket is not None and (node, key) in bucket

    def _append_step(self, run: ControlRun, step: PlanStep) -> None:
        """Commit a step; the packet adopts the plan at its first step
        (the NI may need the plan before the run terminates)."""
        first = not run.plan.steps
        run.plan.steps.append(step)
        if first:
            run.packet.pra_plan = run.plan
            self.stats.pra_planned_packets += 1
            faults = self.network.faults
            if faults.enabled:
                expire_at = faults.plan_expiry(
                    run.packet.pid, self.network.cycle, run.plan.start_slot
                )
                if expire_at is not None:
                    self.network.schedule_call(
                        expire_at, self._expire_plan, run.plan
                    )

    def _expire_plan(self, plan: PraPlan) -> None:
        """Chaos fault: corrupted/expired reservation state tears the
        plan down strictly before its first timeslot.  Expiring a plan
        that has started executing would strand flits in latches (they
        drain only through plan execution) — that is a simulator bug,
        not a modelable hardware fault, so the guard is hard."""
        if plan.cancelled or plan.finished:
            return
        if self.network.cycle >= plan.start_slot:
            return
        faults = self.network.faults
        if faults.enabled:
            faults.record("plan_expired")
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.emit(self.network.cycle, EV_FAULT,
                        pid=plan.packet.pid,
                        node=plan.steps[0].driver_node if plan.steps
                        else None,
                        site="reservation", fault="expired",
                        steps=len(plan.steps))
        plan.cancel()

    def _finish(self, run: ControlRun, reason: str) -> None:
        """The control packet is dropped (every control packet ends in a
        drop); record Figure 7's lag-at-drop and settle the plan."""
        lag = max(run.lag, 0)
        self._record_drop(lag, reason, run)
        if not run.plan.steps:
            run.plan.cancel()
            run.packet.pra_pending = False

    def _record_drop(self, lag: int, reason: str,
                     run: Optional[ControlRun] = None) -> None:
        self.stats.control_lag_at_drop[lag] += 1
        self.stats.control_drop_reasons[reason] += 1
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.emit(
                self.network.cycle, EV_CONTROL_DROP,
                pid=run.packet.pid if run is not None else None,
                node=(run.route[min(run.pos, len(run.route) - 1)][0]
                      if run is not None else None),
                reason=reason, lag=lag,
                steps=len(run.plan.steps) if run is not None else 0,
            )

    def purge(self, now: int) -> None:
        """Pop media-claim buckets for cycles that have passed.

        O(cycles advanced) instead of a scan over every live claim, and
        afterwards no claim for a cycle ``< now`` is reachable."""
        while self._purge_floor < now:
            self._media.pop(self._purge_floor, None)
            self._purge_floor += 1

    # -- checkpointing ---------------------------------------------------

    def state_dict(self, ctx) -> dict:
        """Media claims are membership-only (never iterated), so each
        bucket is serialized in a canonical sorted order."""
        media = []
        for cycle, bucket in sorted(self._media.items()):
            claims = sorted(
                ([node, int(key) if isinstance(key, Direction) else key]
                 for node, key in bucket),
                key=lambda claim: (claim[0], str(claim[1])),
            )
            media.append([cycle, claims])
        return {"media": media, "purge_floor": self._purge_floor}

    def load_state(self, state: dict, ctx) -> None:
        self._media = {
            cycle: {
                (node, key if key == "inject" else Direction(key))
                for node, key in claims
            }
            for cycle, claims in state["media"]
        }
        self._purge_floor = state["purge_floor"]
