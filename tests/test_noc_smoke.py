"""Smoke tests for the mesh substrate (developed alongside the code)."""

from repro.noc.network import build_network
from repro.noc.packet import Packet
from repro.params import MessageClass, NocKind, NocParams


def make_mesh(width=4, height=4):
    return build_network(NocParams(kind=NocKind.MESH, mesh_width=width,
                                   mesh_height=height))


def test_single_packet_delivery():
    net = make_mesh()
    delivered = []
    net.on_delivery(lambda pkt, now: delivered.append((pkt, now)))
    pkt = Packet(src=0, dst=15, msg_class=MessageClass.REQUEST,
                 created=net.cycle)
    net.send(pkt)
    net.drain(max_cycles=200)
    assert len(delivered) == 1
    assert delivered[0][0] is pkt
    assert pkt.ejected is not None
    assert pkt.hops_taken == 6  # Manhattan distance 0 -> 15 on a 4x4


def test_zero_load_latency_two_cycles_per_hop():
    net = make_mesh()
    pkt = Packet(src=0, dst=3, msg_class=MessageClass.REQUEST,
                 created=net.cycle)
    net.send(pkt)
    net.drain(max_cycles=100)
    # NI grant at t, visible at router at t+2, one grant per router
    # (2 cycles/hop), final ejection +1.
    hops = 3
    assert pkt.network_latency() == 2 * hops + 2 + 1


def test_multi_flit_packet_arrives_intact():
    net = make_mesh()
    pkt = Packet(src=5, dst=10, msg_class=MessageClass.RESPONSE,
                 created=net.cycle)
    assert pkt.size == 5
    net.send(pkt)
    net.drain(max_cycles=200)
    assert net.stats.flits_ejected == 5
    assert net.stats.packets_ejected == 1


def test_many_random_packets_all_delivered():
    import random

    rng = random.Random(7)
    net = make_mesh()
    packets = []
    for i in range(100):
        src = rng.randrange(16)
        dst = rng.randrange(16)
        while dst == src:
            dst = rng.randrange(16)
        mc = rng.choice(list(MessageClass))
        pkt = Packet(src=src, dst=dst, msg_class=mc, created=net.cycle)
        packets.append(pkt)
        net.send(pkt)
        net.step()
    net.drain(max_cycles=5000)
    assert net.stats.packets_ejected == 100
    assert all(p.ejected is not None for p in packets)
