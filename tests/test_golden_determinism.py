"""Golden-determinism regression oracle for the hot-path optimizations.

The activity-based cycle loop, the reservation ring buffer, and the rest
of the performance work in this repository are only admissible if they
are *pure* optimizations: every organization must produce bit-identical
statistics to the unoptimized simulator.  The digests below were
captured from the pre-optimization tree (commit ``58e9175``) with the
exact scenarios replicated here; any semantic drift in the cycle loop,
arbitration, reservation handling, or the perf model changes a digest
and fails this test.

A second group of tests asserts *observer neutrality*: attaching the
event tracer, the invariant suite, or a fault injector with an empty
schedule must not perturb results either, because the wake-set loop
shares state with all three.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.faults import FaultInjector, FaultSchedule
from repro.invariants import InvariantSuite
from repro.noc.network import build_network
from repro.params import NocKind, NocParams
from repro.perf.system import SystemSimulator
from repro.trace import RingTracer
from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern

ALL_KINDS = (NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA, NocKind.IDEAL)

#: sha256 of the network-level stats summary: 8x8 mesh, uniform-random
#: synthetic traffic at rate 0.02, seed 7, 800 cycles plus a full drain.
GOLDEN_NETWORK = {
    NocKind.MESH: (
        "e2758ab3daf9fb3f358b9c06cda1324f7499e9249e60cfa2e4ee98e8c5d934ea"
    ),
    NocKind.SMART: (
        "3ec8d8b20f6effe17be818751207503d28a08cee61240be29717913df1623a30"
    ),
    NocKind.MESH_PRA: (
        "2b137b61a672d98839a1f116a1eaf0e6988feda725f997800c307fe52143fb3d"
    ),
    NocKind.IDEAL: (
        "0d2ed08b60bb8e37457606b287f240167cb71ea8b64df487b669b2f131dccc6c"
    ),
}

#: sha256 over the full-system perf sample plus network stats: the
#: 'Web Search' workload, seed 5, 200 warm-up + 800 measured cycles.
GOLDEN_SYSTEM = {
    NocKind.MESH: (
        "20125e6ded4db52c30d2d2cfbdaa2c40522fdd3714cf3570f794484a8a4bc7b0"
    ),
    NocKind.SMART: (
        "6178ca30617686baa00a27559f3f147e4daf0c10f9c2e8ccc3db76668e7ff634"
    ),
    NocKind.MESH_PRA: (
        "756f0e9a13a2c58515ecc951d3cba1428dd9dfb18d82adc690c746e1d73208da"
    ),
    NocKind.IDEAL: (
        "3d6beed08565a73143346670a78f7839a8e0bd28b895f7ea3e52d5a6d4319fd3"
    ),
}


def _digest(payload) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=repr).encode()
    ).hexdigest()


def _network_digest(kind: NocKind, observers: str = "none") -> str:
    """Stats digest of the fixed synthetic scenario.

    ``observers`` selects what rides along: ``"none"`` (the golden
    configuration), ``"tracing"`` (ring tracer + invariant suite), or
    ``"faults"`` (a fault injector whose schedule is empty).
    """
    net = build_network(NocParams(kind=kind, mesh_width=8, mesh_height=8))
    if observers == "tracing":
        net.attach(tracer=RingTracer(capacity=1 << 12))
        net.attach(invariants=InvariantSuite())
    elif observers == "faults":
        net.attach(faults=FaultInjector(FaultSchedule()))
    SyntheticTraffic(
        net, TrafficPattern.UNIFORM_RANDOM, 0.02, seed=7
    ).run(800)
    net.drain(max_cycles=20000)
    return _digest(net.stats.summary())


def _system_digest(kind: NocKind) -> str:
    sim = SystemSimulator("Web Search", kind, seed=5)
    sample = sim.run_sample(warmup=200, measure=800)
    return _digest({
        "sample": sample.to_dict(),
        "stats": sim.chip.network.stats.summary(),
    })


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
def test_network_stats_match_unoptimized_simulator(kind):
    assert _network_digest(kind) == GOLDEN_NETWORK[kind]


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
def test_system_sample_matches_unoptimized_simulator(kind):
    assert _system_digest(kind) == GOLDEN_SYSTEM[kind]


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
def test_tracer_and_invariants_do_not_perturb_results(kind):
    assert _network_digest(kind, observers="tracing") == GOLDEN_NETWORK[kind]


@pytest.mark.parametrize(
    "kind",
    # The ideal network has no routers or links, hence no fault sites.
    (NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA),
    ids=lambda k: k.value,
)
def test_empty_fault_schedule_does_not_perturb_results(kind):
    assert _network_digest(kind, observers="faults") == GOLDEN_NETWORK[kind]
