"""Packets: the unit of routing, allocation, and (for PRA) reservation.

The paper's PRA pre-allocates resources for *whole packets* (not
individual flits, unlike flit-reservation flow control) so that flits of
a packet are never reordered on a single-cycle multi-hop path.  The
packet object therefore carries the PRA plan produced by a successful
control-packet run (see :mod:`repro.core.control_network`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.noc.flit import Flit, flit_pool
from repro.params import MessageClass, PACKET_FLITS

#: Next packet id to hand out.  A plain module int (rather than
#: ``itertools.count``) so checkpoints can capture and restore it.
_next_pid = 0


def _new_pid() -> int:
    global _next_pid
    pid = _next_pid
    _next_pid = pid + 1
    return pid


def peek_next_pid() -> int:
    """The id the next ``Packet()`` will receive (checkpoint support)."""
    return _next_pid


def set_next_pid(value: int) -> None:
    """Restart packet numbering from ``value`` (checkpoint restore)."""
    global _next_pid
    _next_pid = value


def reset_packet_ids() -> None:
    """Restart packet numbering (test isolation helper)."""
    set_next_pid(0)


class Packet:
    """A message traveling from ``src`` to ``dst``.

    Timestamps (all in cycles):

    * ``created`` — handed to the source network interface,
    * ``injected`` — head flit entered the source router,
    * ``ejected`` — tail flit delivered to the destination NI.
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "msg_class",
        "size",
        "vc_index",
        "is_multi_flit",
        "flits",
        "created",
        "injected",
        "ejected",
        "payload",
        "pra_plan",
        "pra_pending",
        "pra_blocked_cycles",
        "hops_taken",
        "ring_layer",
        "pooled",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        msg_class: MessageClass,
        size: Optional[int] = None,
        created: int = 0,
        payload: Any = None,
    ):
        #: True for packets drawn from the free-list pool; the network
        #: recycles them automatically on delivery.
        self.pooled = False
        self._reset(src, dst, msg_class, size, created, payload)

    def _reset(
        self,
        src: int,
        dst: int,
        msg_class: MessageClass,
        size: Optional[int],
        created: int,
        payload: Any,
    ) -> None:
        """(Re)initialize every field, consuming a fresh pid — shared by
        the constructor and the pool, so a recycled packet is
        indistinguishable from a newly constructed one."""
        if size is None:
            size = PACKET_FLITS[msg_class]
        if size < 1:
            raise ValueError("packet size must be at least one flit")
        self.pid = _new_pid()
        self.src = src
        self.dst = dst
        self.msg_class = msg_class
        self.size = size
        #: Message classes map one-to-one onto VC indices; materialized
        #: here because the hot paths read it constantly.
        self.vc_index = msg_class.value
        self.is_multi_flit = size > 1
        self.created = created
        self.injected: Optional[int] = None
        self.ejected: Optional[int] = None
        self.payload = payload
        #: Active pre-allocated path, set by the PRA control network.
        self.pra_plan: Any = None
        #: True while a control packet is in flight (or a plan is active)
        #: for this packet; suppresses duplicate LSD injections.
        self.pra_pending = False
        #: Cycles this packet spent blocked behind resources that were
        #: proactively allocated to *another* packet (Section V-B stat).
        self.pra_blocked_cycles = 0
        #: Link traversals of the head flit (for stats / energy).
        self.hops_taken = 0
        #: Dateline VC layer on ring interconnects (0 before crossing).
        self.ring_layer = 0

    def __getattr__(self, name: str) -> Any:
        # ``flits`` is materialized on first access: the ideal network
        # moves whole packets and never looks at individual flits, so
        # eager construction would waste a third of its runtime.
        if name == "flits":
            acquire = flit_pool.acquire
            flits: List[Flit] = [acquire(self, i) for i in range(self.size)]
            self.flits = flits
            return flits
        raise AttributeError(name)

    def state_dict(self, ctx) -> Dict[str, Any]:
        """Serializable snapshot of this packet (see ``repro.checkpoint``).

        ``flits`` is deliberately absent: flits are a pure function of
        ``(packet, index)`` and references to them serialize as
        ``["flit", pid, index]``, which rematerializes them on demand.
        """
        return {
            "pid": self.pid,
            "src": self.src,
            "dst": self.dst,
            "msg_class": self.msg_class.value,
            "size": self.size,
            "vc_index": self.vc_index,
            "created": self.created,
            "injected": self.injected,
            "ejected": self.ejected,
            "payload": ctx.ref(self.payload),
            "pra_plan": ctx.plan_ref(self.pra_plan),
            "pra_pending": self.pra_pending,
            "pra_blocked_cycles": self.pra_blocked_cycles,
            "hops_taken": self.hops_taken,
            "ring_layer": self.ring_layer,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "Packet":
        """Rebuild a packet shell without consuming a fresh pid.

        ``payload`` and ``pra_plan`` are cross-references wired by the
        restore context after every registry object exists.
        """
        packet = cls.__new__(cls)
        # Pool membership is allocator bookkeeping, not simulator state:
        # a restored packet simply is not recycled when it dies.
        packet.pooled = False
        packet.pid = state["pid"]
        packet.src = state["src"]
        packet.dst = state["dst"]
        packet.msg_class = MessageClass(state["msg_class"])
        packet.size = state["size"]
        packet.vc_index = state["vc_index"]
        packet.is_multi_flit = state["size"] > 1
        packet.created = state["created"]
        packet.injected = state["injected"]
        packet.ejected = state["ejected"]
        packet.payload = None
        packet.pra_plan = None
        packet.pra_pending = state["pra_pending"]
        packet.pra_blocked_cycles = state["pra_blocked_cycles"]
        packet.hops_taken = state["hops_taken"]
        packet.ring_layer = state["ring_layer"]
        return packet

    def network_latency(self) -> Optional[int]:
        if self.injected is None or self.ejected is None:
            return None
        return self.ejected - self.injected

    def total_latency(self) -> Optional[int]:
        if self.ejected is None:
            return None
        return self.ejected - self.created

    def __repr__(self) -> str:
        return (
            f"Packet(pid={self.pid}, {self.src}->{self.dst}, "
            f"{self.msg_class.name}, {self.size}f)"
        )


#: Slot descriptor for ``flits`` — reading through it (instead of
#: ``packet.flits``) does NOT trigger lazy materialization.
_FLITS_SLOT = Packet.flits


class PacketPool:
    """Free list of packet (and, transitively, flit) objects.

    ``acquire`` hands out a packet indistinguishable from a fresh
    ``Packet(...)`` — every field reset, a *new* pid consumed — so the
    pid sequence, and with it every golden digest, is unchanged by
    pooling.  ``release`` drops the payload/plan references and returns
    the object (reset-on-release); its flits go back to the
    :data:`~repro.noc.flit.flit_pool` so a re-sized reuse recycles them
    too.  Only packets created through the pool are marked ``pooled``
    and recycled by ``Network._deliver``; directly constructed packets
    (tests, one-off probes) are never touched.
    """

    __slots__ = ("_free", "acquired", "reused", "released")

    def __init__(self):
        self._free: List[Packet] = []
        self.acquired = 0
        self.reused = 0
        self.released = 0

    def acquire(
        self,
        src: int,
        dst: int,
        msg_class: MessageClass,
        size: Optional[int] = None,
        created: int = 0,
        payload: Any = None,
    ) -> Packet:
        self.acquired += 1
        if self._free:
            self.reused += 1
            packet = self._free.pop()
            packet._reset(src, dst, msg_class, size, created, payload)
            return packet
        packet = Packet(src, dst, msg_class, size=size, created=created,
                        payload=payload)
        packet.pooled = True
        return packet

    def release(self, packet: Packet) -> None:
        """Take a dead packet back.  Callers must guarantee delivery is
        fully settled: tail ejected, no live plan, no pending events."""
        self.released += 1
        try:
            flits = _FLITS_SLOT.__get__(packet, Packet)
        except AttributeError:
            flits = None  # never materialized (the ideal network)
        if flits is not None:
            flit_pool.release(flits)
            _FLITS_SLOT.__delete__(packet)
        packet.payload = None
        packet.pra_plan = None
        self._free.append(packet)

    def stats(self) -> dict:
        return {
            "packets_acquired": self.acquired,
            "packets_reused": self.reused,
            "packets_released": self.released,
            "packets_free": len(self._free),
        }

    def clear(self) -> None:
        """Drop the free list and zero the counters (test isolation)."""
        self._free.clear()
        self.acquired = self.reused = self.released = 0


#: The process-wide packet free list.
packet_pool = PacketPool()


def pool_summary() -> Dict[str, int]:
    """Combined packet- and flit-pool counters (bench reports and the
    opt-in ``NetworkStats.summary(include_pools=True)``)."""
    out = dict(packet_pool.stats())
    out.update(flit_pool.stats())
    return out
