"""Flits: the unit of link bandwidth and buffering.

A packet of ``size`` flits is decomposed into one head flit, ``size - 2``
body flits, and one tail flit (a single-flit packet's flit is both head
and tail).  Flits carry a reference to their packet; routing state lives
on the packet.

Flits are a pure function of ``(packet, index)`` with no mutable state
of their own, which makes them ideal free-list citizens: the
:class:`FlitPool` below recycles flit objects of packets that went
through the packet pool (see :mod:`repro.noc.packet`), resetting every
field on reuse so a recycled flit is indistinguishable from a fresh one.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.packet import Packet


class FlitType(Enum):
    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    HEAD_TAIL = "head_tail"  # single-flit packet


class Flit:
    """One flit of a packet.

    ``index`` is the flit's position within the packet (0 = head).
    """

    __slots__ = ("packet", "index", "kind", "is_head", "is_tail")

    def __init__(self, packet: "Packet", index: int):
        self.reset(packet, index)

    def reset(self, packet: "Packet", index: int) -> None:
        """(Re)bind this flit to ``(packet, index)``, overwriting every
        field — the whole free-list reuse contract."""
        size = packet.size
        if not (0 <= index < size):
            raise ValueError(f"flit index {index} outside packet of {size}")
        self.packet = packet
        self.index = index
        #: Materialized head/tail flags: the arbiters read these on
        #: every flit move, so a property would dominate the hot path.
        self.is_head = index == 0
        self.is_tail = index == size - 1
        if size == 1:
            self.kind = FlitType.HEAD_TAIL
        elif index == 0:
            self.kind = FlitType.HEAD
        elif index == size - 1:
            self.kind = FlitType.TAIL
        else:
            self.kind = FlitType.BODY

    def __repr__(self) -> str:
        return f"Flit(pkt={self.packet.pid}, idx={self.index}, {self.kind.value})"


class FlitPool:
    """Free list of flit objects (allocation-churn relief).

    Only the packet pool feeds it: a pooled packet's flits return here
    when the packet is re-sized on reuse, and ``acquire`` resets every
    field before handing a flit back out, so behavior is bit-identical
    to constructing fresh objects (the golden-determinism digests hold
    with pooling on the hot path).
    """

    __slots__ = ("_free", "acquired", "reused", "released")

    def __init__(self):
        self._free: List[Flit] = []
        self.acquired = 0
        self.reused = 0
        self.released = 0

    def acquire(self, packet: "Packet", index: int) -> Flit:
        self.acquired += 1
        if self._free:
            self.reused += 1
            flit = self._free.pop()
            flit.reset(packet, index)
            return flit
        return Flit(packet, index)

    def release(self, flits: List[Flit]) -> None:
        """Take dead flits back.  Callers must guarantee no live
        reference remains (tail delivered, all events consumed)."""
        self.released += len(flits)
        self._free.extend(flits)

    def stats(self) -> dict:
        return {
            "flits_acquired": self.acquired,
            "flits_reused": self.reused,
            "flits_released": self.released,
            "flits_free": len(self._free),
        }

    def clear(self) -> None:
        """Drop the free list and zero the counters (test isolation)."""
        self._free.clear()
        self.acquired = self.reused = self.released = 0


#: The process-wide flit free list.
flit_pool = FlitPool()
