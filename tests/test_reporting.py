"""Tests for table and bar-chart rendering."""

from repro.harness.reporting import render_bars, render_figure


def _result():
    return {
        "title": "T",
        "headers": ["Workload", "Mesh", "PRA"],
        "rows": [["A", 1.0, 1.05], ["B", 1.0, 1.10]],
    }


class TestRenderBars:
    def test_bars_scale_to_peak(self):
        text = render_bars(_result(), width=20)
        lines = text.splitlines()
        assert lines[0] == "T"
        # The peak value (1.10) gets the full width.
        peak_line = [l for l in lines if "1.100" in l][0]
        assert peak_line.count("#") == 20

    def test_values_printed(self):
        text = render_bars(_result())
        assert "1.050" in text and "1.100" in text

    def test_non_numeric_columns_fall_back(self):
        result = {"title": "T", "headers": ["A", "B"],
                  "rows": [["x", "y"]]}
        text = render_bars(result)
        assert text == render_figure(result)

    def test_group_labels(self):
        text = render_bars(_result())
        assert "A" in text.splitlines()[1]
