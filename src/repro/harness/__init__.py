"""Experiment harness: one entry point per table/figure in the paper.

See DESIGN.md §4 for the experiment index.  Every figure function
returns plain data structures (dicts keyed by workload/organization) and
can render itself as a paper-style text table via
:mod:`repro.harness.reporting`.

Scale control: simulations are expensive in a pure-Python cycle
simulator, so the harness has three presets (``smoke``, ``default``,
``full``) selectable with the ``REPRO_SCALE`` environment variable.
Results at any scale reproduce the paper's *shape*; ``full`` tightens
the confidence intervals.
"""

from repro.harness.runner import EvaluationScale, get_scale, evaluation_grid
from repro.harness.figures import (
    analytic_validation,
    chiplet_comparison,
    figure2,
    figure6,
    figure7,
    figure8,
    figure9,
    power_analysis,
    section5b_stats,
    table1,
    zero_load_table,
)
from repro.harness.reporting import format_table, render_figure

__all__ = [
    "EvaluationScale",
    "get_scale",
    "evaluation_grid",
    "analytic_validation",
    "chiplet_comparison",
    "figure2",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "power_analysis",
    "section5b_stats",
    "table1",
    "zero_load_table",
    "format_table",
    "render_figure",
]
