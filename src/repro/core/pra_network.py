"""The Mesh+PRA organization: data network + control network + NI hooks.

Two event windows trigger proactive allocation (paper Section III):

1. **LLC hit** — the tile layer calls :meth:`PraNetwork.announce` when
   the tag lookup hits; the response's destination and ready time are
   then known ``data_lookup_cycles`` in advance.  The NI builds a control
   packet, pins the injection slot, and the control network pre-allocates
   the response's path.
2. **In-network blocking** — handled inside the routers by the LSD unit
   (:class:`repro.core.pra_router.PraRouter`).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.control_network import ControlNetwork
from repro.core.plan import PraPlan, SRC_VC
from repro.core.pra_router import PraRouter
from repro.noc.interface import NetworkInterface
from repro.noc.mesh import MeshNetwork
from repro.noc.network import _CREDIT
from repro.noc.packet import Packet
from repro.noc.topology import Direction
from repro.params import NocParams

#: NI grant happens two cycles before the head's first traversal slot
#: (one cycle NI-to-router link, one cycle becoming allocation-eligible).
_INJECTION_LEAD = 2


class PraInterface(NetworkInterface):
    """NI with deterministic, pinned injection of announced responses."""

    def __init__(self, node: int, network, router):
        super().__init__(node, network, router)
        #: packet id -> (packet, grant cycle, plan)
        self._pins: Dict[int, Tuple[Packet, int, PraPlan]] = {}

    # -- pin management --------------------------------------------------------

    def can_pin(self, grant_time: int, size: int) -> bool:
        """True when the injection window [grant, grant+size) is free of
        other pinned windows and of the currently draining packet."""
        if self.port.is_held:
            holder = self.port.held_by
            drain_done = self.network.cycle + (
                holder.size - self._holder_next_flit
            )
            if drain_done > grant_time:
                return False
        for _, other_grant, plan in self._pins.values():
            if plan.cancelled:
                continue
            other_end = other_grant + plan.size
            if not (grant_time + size <= other_grant or grant_time >= other_end):
                return False
        return True

    def pin(self, packet: Packet, plan: PraPlan) -> None:
        grant_time = plan.start_slot - _INJECTION_LEAD
        self._pins[packet.pid] = (packet, grant_time, plan)

    def release_pin(self, packet: Packet) -> None:
        self._pins.pop(packet.pid, None)

    # -- injection overrides ------------------------------------------------------

    def _may_inject(self, packet: Packet, now: int) -> bool:
        if not self._pins:
            return True
        pin = self._pins.get(packet.pid)
        if pin is not None:
            return now >= pin[1]
        # Unpinned packets may only use the port if they finish before
        # the earliest pinned grant.
        earliest = min(g for (_, g, p) in self._pins.values() if not p.cancelled)
        return now + packet.size <= earliest

    def _arbitrate(self, now: int) -> None:
        # A pinned packet whose grant time has arrived takes priority and
        # may be picked from anywhere in its class queue.
        for packet, grant_time, plan in list(self._pins.values()):
            if plan.cancelled or now < grant_time:
                continue
            if packet in self.queues[packet.vc_index]:
                self._start_injection(packet, now)
                return
        super()._arbitrate(now)

    def _start_injection(self, packet: Packet, now: int) -> None:
        port = self.port
        downstream_vc = port.downstream_vc(packet.vc_index)
        if downstream_vc.allocated_to is not packet:
            # Ownership is pre-set (or chained) for planned injections;
            # anything else allocates the VC here as usual.
            if downstream_vc.allocated_to is None:
                downstream_vc.allocated_to = packet
                if downstream_vc.next_claim is packet:
                    # Stale self-chain (the predecessor was cancelled).
                    downstream_vc.next_claim = None
            else:
                # A chained claim that has not handed over yet: the
                # owner's tail is still draining; wait.
                return
        port.hold(packet, source_vc=None)
        packet.injected = now
        self._trace_injection(packet, now)
        self._holder_next_flit = 0
        self._continue_holder(now)

    def _continue_holder(self, now: int) -> None:
        port = self.port
        packet = port.held_by
        assert packet is not None
        if not port.has_credit_for(packet.vc_index):
            return
        flit = packet.flits[self._holder_next_flit]
        self._holder_next_flit += 1
        port.send(flit, now)
        if flit.is_tail:
            queue = self.queues[packet.vc_index]
            if queue and queue[0] is packet:
                queue.popleft()
            else:
                queue.remove(packet)
            port.release()
            self._pins.pop(packet.pid, None)

    # -- checkpointing ---------------------------------------------------

    def state_dict(self, ctx) -> dict:
        state = super().state_dict(ctx)
        # ``_arbitrate`` iterates pins in insertion order, so the dict
        # order is part of the arbitration priority — keep it as-is.
        state["pins"] = [
            [pid, grant_time, ctx.plan_ref(plan)]
            for pid, (packet, grant_time, plan) in self._pins.items()
            if not plan.cancelled
        ]
        return state

    def load_state(self, state: dict, ctx) -> None:
        super().load_state(state, ctx)
        self._pins = {}
        for pid, grant_time, plan_ref in state["pins"]:
            plan = ctx.plan(plan_ref)
            self._pins[pid] = (ctx.packet(["pkt", pid]), grant_time, plan)


class PraNetwork(MeshNetwork):
    """Mesh+PRA: PRA routers, PRA interfaces, and the control network."""

    router_class = PraRouter
    interface_class = PraInterface

    def __init__(self, params: NocParams):
        super().__init__(params)
        self.control = ControlNetwork(self)

    def announce(self, packet: Packet, ready_in: int) -> None:
        """LLC-hit trigger: pre-allocate the response's path.

        ``ready_in`` is the number of cycles until the data lookup
        completes and the packet is handed to the NI.
        """
        if not self.params.pra.use_llc_trigger:
            return
        if packet.src == packet.dst:
            return  # local hit; never enters the network
        max_lead = self.params.pra.max_lag + 1
        if ready_in > max_lead:
            # Long-lead announcement (e.g. a deterministic DRAM
            # completion): defer until the control packet's full lag
            # budget is usable — reserving ~90 cycles out would exceed
            # the bit vectors' horizon and starve other traffic.
            self.schedule_call(
                self.cycle + ready_in - max_lead,
                self.announce, packet, max_lead,
            )
            return
        ni: PraInterface = self.interfaces[packet.src]
        t_ready = self.cycle + ready_in
        start_slot = t_ready + _INJECTION_LEAD
        if not ni.can_pin(t_ready, packet.size):
            return
        self.control.inject(
            packet,
            packet.src,
            start_slot=start_slot,
            trigger="llc",
            source_kind=SRC_VC,
            source_dir=Direction.LOCAL,
            source_vc=packet.vc_index,
        )

    # -- event scheduling -------------------------------------------------

    def schedule_credit(self, time, port, vc_index) -> None:
        """Credits ride the *ordered* event queue here, not the bulk
        credit queue: the control network's reservation walk
        (:meth:`ControlNetwork._process`, a deferred call) reads credit
        counters, so a credit and a same-cycle control step must keep
        their exact insertion order."""
        if time <= self.cycle:
            raise ValueError("events must be scheduled in the future")
        events = self._events
        bucket = events.get(time)
        if bucket is None:
            pool = self._bucket_pool
            bucket = pool.pop() if pool else ([], [], [])
            events[time] = bucket
        bucket[2].append((_CREDIT, port, vc_index))

    def _restore_credit(self, bucket, port, vc_index: int) -> None:
        bucket[2].append((_CREDIT, port, vc_index))

    def _post_router_step(self, now: int) -> None:
        self.control.purge(now)

    def _post_skip(self, start: int, end: int) -> None:
        # A stepped run purges after every cycle of the span; popping is
        # idempotent, so one purge at the last stepped cycle leaves the
        # claim buckets (and the checkpointed purge floor) identical.
        self.control.purge(end - 1)

    # -- checkpointing ---------------------------------------------------

    def state_dict(self, ctx) -> dict:
        state = super().state_dict(ctx)
        state["control"] = self.control.state_dict(ctx)
        return state

    def load_state(self, state: dict, ctx) -> None:
        super().load_state(state, ctx)
        self.control.load_state(state["control"], ctx)
